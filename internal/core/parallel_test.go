package core

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/yu-verify/yu/internal/config"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// buildEngine runs route simulation on a fresh manager and returns an
// engine, so sequential and parallel runs never share MTBDD state.
func buildEngine(t testing.TB, spec *config.Spec, mode topo.FailureMode, k int, opts Options) *Engine {
	t.Helper()
	m := mtbdd.New()
	fv := routesim.NewFailVars(m, spec.Net, mode, k)
	rs, err := routesim.Run(fv, spec.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(rs, opts)
}

// normalizeReport zeroes the wall-clock fields, which are the only part of
// a Report allowed to differ between sequential and parallel runs.
func normalizeReport(rep *Report) {
	for i := range rep.LinkStats {
		rep.LinkStats[i].Elapsed = 0
	}
}

func reportsEqual(t *testing.T, name string, seq, par *Report) {
	t.Helper()
	normalizeReport(seq)
	normalizeReport(par)
	if seq.Holds != par.Holds {
		t.Fatalf("%s: Holds %v (sequential) vs %v (parallel)", name, seq.Holds, par.Holds)
	}
	if seq.FlowsExecuted != par.FlowsExecuted || seq.FlowsTotal != par.FlowsTotal {
		t.Fatalf("%s: flow counts (%d,%d) vs (%d,%d)", name,
			seq.FlowsExecuted, seq.FlowsTotal, par.FlowsExecuted, par.FlowsTotal)
	}
	if len(seq.Violations) != len(par.Violations) {
		t.Fatalf("%s: %d violations (sequential) vs %d (parallel)", name, len(seq.Violations), len(par.Violations))
	}
	for i := range seq.Violations {
		a, b := seq.Violations[i], par.Violations[i]
		if a.Kind != b.Kind || a.Link != b.Link || a.Prefix != b.Prefix ||
			a.Value != b.Value || a.Min != b.Min || a.Max != b.Max {
			t.Fatalf("%s: violation %d differs:\n  sequential: %+v\n  parallel:   %+v", name, i, a, b)
		}
		if len(a.FailedLinks) != len(b.FailedLinks) || len(a.FailedRouters) != len(b.FailedRouters) {
			t.Fatalf("%s: violation %d witness differs: %+v vs %+v", name, i, a, b)
		}
		for j := range a.FailedLinks {
			if a.FailedLinks[j] != b.FailedLinks[j] {
				t.Fatalf("%s: violation %d witness link %d differs", name, i, j)
			}
		}
		for j := range a.FailedRouters {
			if a.FailedRouters[j] != b.FailedRouters[j] {
				t.Fatalf("%s: violation %d witness router %d differs", name, i, j)
			}
		}
	}
	if len(seq.LinkStats) != len(par.LinkStats) {
		t.Fatalf("%s: %d link stats (sequential) vs %d (parallel)", name, len(seq.LinkStats), len(par.LinkStats))
	}
	for i := range seq.LinkStats {
		if seq.LinkStats[i] != par.LinkStats[i] {
			t.Fatalf("%s: link stat %d differs:\n  sequential: %+v\n  parallel:   %+v",
				name, i, seq.LinkStats[i], par.LinkStats[i])
		}
	}
}

// runBoth verifies the same workload sequentially and with 4 workers and
// requires identical Reports.
func runBoth(t *testing.T, name string, spec *config.Spec, flows []topo.Flow, mode topo.FailureMode, k int, opts Options, overload float64, delivered []topo.DeliveredBound) {
	t.Helper()
	seqEng := buildEngine(t, spec, mode, k, opts)
	seq := mustRun(t, func() (*Report, error) { return NewVerifier(seqEng, flows).Run(spec.Props, delivered, overload) })

	parEng := buildEngine(t, spec, mode, k, opts)
	par := mustRun(t, func() (*Report, error) { return NewParallelVerifier(parEng, flows, 4).Run(spec.Props, delivered, overload) })

	reportsEqual(t, name, seq, par)
}

// TestParallelMatchesSequentialFatTree checks the determinism guarantee on
// the FT-4 fixture: a parallel run (4 workers) produces exactly the
// sequential Report, violations and per-link stats included.
func TestParallelMatchesSequentialFatTree(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, 9.0/56.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, "fattree", spec, flows, topo.FailLinks, 2, Options{}, 1.0, nil)
}

// TestParallelMatchesSequentialWAN checks the guarantee on a WAN fixture,
// including a delivered bound and a tight overload factor that produces
// violations.
func TestParallelMatchesSequentialWAN(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 40, Links: 80, Prefixes: 12, SRPolicyFraction: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 600, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 3, Seed: 142,
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := []topo.DeliveredBound{{
		Prefix: netip.MustParsePrefix("0.0.0.0/0"), Min: 0, Max: 1e12,
	}}
	runBoth(t, "wan", spec, flows, topo.FailLinks, 1, Options{}, 0.5, delivered)
	runBoth(t, "wan-noearly", spec, flows, topo.FailLinks, 1, Options{DisableEarlyTermination: true}, 0.5, nil)
}

// TestParallelExecutionSharding checks that sharded execution with merge
// reproduces the sequential STFs node for node in the primary manager.
func TestParallelExecutionSharding(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 8, SRPolicyFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 200, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 2, Seed: 105,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
	seq := NewVerifier(eng, flows)
	// The parallel verifier shares eng's manager: its imported STFs must
	// be pointer-identical to the sequentially executed ones.
	par := NewParallelVerifier(eng, flows, 3)
	if len(seq.FlowSTFs()) != len(par.FlowSTFs()) {
		t.Fatalf("%d sequential STFs vs %d parallel", len(seq.FlowSTFs()), len(par.FlowSTFs()))
	}
	for i, a := range seq.FlowSTFs() {
		b := par.FlowSTFs()[i]
		if a.Delivered != b.Delivered || a.Dropped != b.Dropped || a.InFlight != b.InFlight {
			t.Fatalf("STF %d: delivered/dropped/in-flight nodes differ", i)
		}
		if len(a.Links) != len(b.Links) {
			t.Fatalf("STF %d: %d links vs %d", i, len(a.Links), len(b.Links))
		}
		for l, w := range a.Links {
			if b.Links[l] != w {
				t.Fatalf("STF %d: link %d node differs (pointer identity lost in merge)", i, l)
			}
		}
	}
}

// checkLinkPartition asserts the slot-array invariant of the parallel
// overload check: every directed link of the network appears in exactly
// one of Report.LinkStats or Report.Unchecked — no link is dropped, and
// no half-written (done=false) slot leaks a stat or a violation into
// the report.
func checkLinkPartition(t *testing.T, net *topo.Network, rep *Report) {
	t.Helper()
	seen := make(map[topo.DirLinkID]string)
	for _, s := range rep.LinkStats {
		if prev, dup := seen[s.Link]; dup {
			t.Fatalf("link %d appears twice (%s, LinkStats)", s.Link, prev)
		}
		seen[s.Link] = "LinkStats"
	}
	for _, l := range rep.Unchecked {
		if prev, dup := seen[l]; dup {
			t.Fatalf("link %d appears twice (%s, Unchecked)", l, prev)
		}
		seen[l] = "Unchecked"
	}
	if want := 2 * net.NumLinks(); len(seen) != want {
		t.Fatalf("LinkStats (%d) + Unchecked (%d) cover %d directed links, want %d",
			len(rep.LinkStats), len(rep.Unchecked), len(seen), want)
	}
	checked := make(map[topo.DirLinkID]bool, len(rep.LinkStats))
	for _, s := range rep.LinkStats {
		checked[s.Link] = true
	}
	for _, v := range rep.Violations {
		if v.Kind == "link-load" && !checked[v.Link] {
			t.Fatalf("violation on link %d leaked from an unchecked slot", v.Link)
		}
	}
}

// errAfterCtx is a context whose Err flips to Canceled after n polls. It
// lets a test cancel the check pool deterministically from inside the
// workers' own governance polling, mid-run, without racing a timer.
type errAfterCtx struct {
	context.Context
	calls atomic.Int64
	n     int64
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

// TestParallelStopLeavesNoPartialSlots cancels the parallel link-check
// pool mid-run and checks the slot accumulation: links whose check never
// completed must land in Unchecked, completed slots keep their stats,
// and the two sets exactly partition the directed links.
func TestParallelStopLeavesNoPartialSlots(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 8, SRPolicyFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 200, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 2, Seed: 105,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
	v := NewParallelVerifier(eng, flows, 4)
	if v.err != nil {
		t.Fatal(v.err)
	}
	// Arm the cancellation only now, so execution and merge complete and
	// the stop fires inside checkOverloadAllParallel's pool.
	eng.opts.Ctx = &errAfterCtx{Context: context.Background(), n: 8}
	rep, err := v.Run(nil, nil, 1.0)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(rep.Unchecked) == 0 {
		t.Fatal("mid-run cancel left no unchecked links; the stop never fired")
	}
	if !rep.Incomplete || rep.Holds {
		t.Fatalf("Incomplete=%v Holds=%v after a canceled check pool", rep.Incomplete, rep.Holds)
	}
	checkLinkPartition(t, spec.Net, rep)
}

// TestParallelBudgetDegradeSkipPartition drives the check pool into
// node-budget skips under the degrade policy: skipped links must be
// reported as unchecked, never as zero-value stats, and the partition
// invariant must survive whatever mix of done/skipped slots the
// scheduler produced.
func TestParallelBudgetDegradeSkipPartition(t *testing.T) {
	spec, err := gen.FatTree(gen.FatTreeSpec{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Pairwise(spec, 5, 9.0/56.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 2, Options{
		NodeBudget: 6000, OnBudget: BudgetDegrade,
	})
	v := NewParallelVerifier(eng, flows, 4)
	rep, err := v.Run(nil, nil, 1.0)
	if err != nil {
		t.Fatalf("degrade policy must not surface budget errors: %v", err)
	}
	checkLinkPartition(t, spec.Net, rep)
	if len(rep.Unchecked) > 0 && (!rep.Incomplete || rep.Holds) {
		t.Fatalf("Incomplete=%v Holds=%v with %d unchecked links",
			rep.Incomplete, rep.Holds, len(rep.Unchecked))
	}
}

// TestParallelMatchesSequentialWithMetrics re-runs the WAN equality
// check with an obs.Registry attached to both engines: instrumentation
// must be a pure side channel, leaving the parallel Report byte-
// identical to the sequential one, while the parallel registry picks up
// the per-worker counters and per-shard manager stats.
func TestParallelMatchesSequentialWithMetrics(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 40, Links: 80, Prefixes: 12, SRPolicyFraction: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 600, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 3, Seed: 142,
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := []topo.DeliveredBound{{
		Prefix: netip.MustParsePrefix("0.0.0.0/0"), Min: 0, Max: 1e12,
	}}

	seqReg, parReg := obs.New(), obs.New()
	seqEng := buildEngine(t, spec, topo.FailLinks, 1, Options{Obs: seqReg})
	seq := mustRun(t, func() (*Report, error) {
		return NewVerifier(seqEng, flows).Run(spec.Props, delivered, 0.5)
	})
	parEng := buildEngine(t, spec, topo.FailLinks, 1, Options{Obs: parReg})
	par := mustRun(t, func() (*Report, error) {
		return NewParallelVerifier(parEng, flows, 4).Run(spec.Props, delivered, 0.5)
	})
	reportsEqual(t, "wan-metrics", seq, par)

	// The parallel registry must account for every unit of work exactly
	// once: worker flow counters sum to the merged-flow count, link
	// counters to the completed checks.
	snap := parReg.Snapshot()
	var flowSum, linkSum int64
	for name, val := range snap.Counters {
		if !strings.HasPrefix(name, "worker.") {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".flows_executed"):
			flowSum += val
		case strings.HasSuffix(name, ".links_checked"):
			linkSum += val
		}
	}
	if flowSum != int64(par.FlowsExecuted) {
		t.Errorf("worker flow counters sum to %d, report says %d executed", flowSum, par.FlowsExecuted)
	}
	// Delivered-bound checks run on the primary manager before the pool
	// starts, so only the link-load stats are worker-counted.
	var poolStats int64
	for _, s := range par.LinkStats {
		if s.Kind != "delivered" {
			poolStats++
		}
	}
	if linkSum != poolStats {
		t.Errorf("worker link counters sum to %d, report has %d pool link stats", linkSum, poolStats)
	}
	var execShards, checkShards int
	for _, m := range snap.Managers {
		switch {
		case strings.HasPrefix(m.Name, "exec-shard."):
			execShards++
		case strings.HasPrefix(m.Name, "check-shard."):
			checkShards++
		}
		for _, c := range []string{"apply", "kreduce", "neg", "range", "import"} {
			if _, ok := m.Caches[c]; !ok {
				t.Errorf("manager %s missing %s cache counters", m.Name, c)
			}
		}
	}
	if execShards == 0 || checkShards == 0 {
		t.Errorf("registry recorded %d exec shards, %d check shards; want both > 0", execShards, checkShards)
	}
	if kt, ok := snap.TimersMS["check/kreduce"]; !ok || kt.Count == 0 {
		t.Errorf("check/kreduce timer missing or empty: %+v", snap.TimersMS)
	}
}

// TestParallelWorkerFloor checks the degenerate worker counts fall back to
// the sequential path.
func TestParallelWorkerFloor(t *testing.T) {
	spec, err := config.ParseSpecString(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1} {
		eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
		v := NewParallelVerifier(eng, spec.Flows, w)
		if v.workers != 1 {
			t.Fatalf("workers=%d should use the sequential path", w)
		}
		rep := mustRun(t, func() (*Report, error) { return v.Run(nil, nil, 1.0) })
		if rep.FlowsTotal != len(spec.Flows) {
			t.Fatalf("unexpected flow count %d", rep.FlowsTotal)
		}
	}
}

const tinySpec = `
router a as 65001 loopback 10.0.0.1
router b as 65001 loopback 10.0.0.2
link a b cost 10 capacity 100

auto-bgp-mesh

config a
  network 192.168.1.0/24
config b
  network 192.168.2.0/24

flow f1 ingress a src 192.168.1.5 dst 192.168.2.5 gbps 10
failures k 1 mode links
`
