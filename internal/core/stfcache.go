package core

import (
	"net/netip"

	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// STFCache lets a caller reuse symbolic execution results across
// verification runs. The sequential verifier consults it once per
// global-equivalence class: Lookup before executing the class
// representative, Store after a successful execution.
//
// The contract the incremental daemon (internal/serve) builds on:
//
//   - A Lookup hit must return a *FlowSTF whose MTBDDs live in e's
//     manager and encode exactly what executing rep would have built —
//     hash-consing then makes the hit indistinguishable from a real
//     execution, so reports stay byte-identical. The cache owns the
//     soundness argument (typically by keying on a content hash of every
//     route-sim input the execution reads).
//   - The returned STF's Flow field must be rep itself (the caller's
//     representative carries this run's summed volume), not the flow the
//     cached result was first computed from.
//   - Cache-served classes still count toward Report.FlowsExecuted; they
//     are not counted in the exec.flows_executed obs counter, which keeps
//     measuring real symbolic executions.
//
// Only the sequential pipeline (Workers <= 1) consults the cache; the
// work-stealing shards never see it.
type STFCache interface {
	Lookup(e *Engine, rep topo.Flow) (*FlowSTF, bool)
	Store(e *Engine, rep topo.Flow, stf *FlowSTF)
}

// RouteSim exposes the route-simulation result the engine executes over —
// the input surface an STFCache fingerprints.
func (e *Engine) RouteSim() *routesim.Result { return e.rs }

// ClassPrefixes returns the configured prefixes matching dst, most
// specific first. The list is the identity of dst's prefix class: two
// destinations with equal lists share every forwarding decision, and a
// flow's symbolic execution reads only the RIB entries and statics of
// these prefixes (plus the global IGP/SR state).
func (e *Engine) ClassPrefixes(dst netip.Addr) []netip.Prefix {
	return e.classifier.matchedPrefixes(e.classifier.classOf(dst))
}
