// Parallel verification pipeline: work-stealing symbolic execution over
// equivalence classes and concurrent per-link checking (DESIGN.md §13).
//
// mtbdd.Manager is single-threaded by design, so parallelism comes from
// partitioning the work across private managers instead of locking one:
//
//   - Scheduling: the input flows are grouped into global-equivalence
//     classes (§6, sched.go); one representative per class is the work
//     unit. Classes are ordered by a cost model (persisted measurements
//     or a topology heuristic) and packed into chunks, dealt round-robin
//     onto per-worker deques: owners pop expensive chunks from the
//     front, idle workers steal cheap ones from the back.
//   - Execution: each worker builds its own Manager + FailVars
//     (NewFailVars is deterministic, so every shard has the identical
//     variable order), clones the guarded RIBs from a shared read-only
//     snapshot (routesim.ImportBase — the source DAG is walked once, each
//     worker pays only a linear replay into its own slab arena), and runs
//     ExecuteFlow with per-worker managed GC. ExecuteFlow iterates its
//     wavefront in sorted order, so a worker computes bit-for-bit the
//     same STF the sequential path would, regardless of which worker ran
//     it or in what order.
//   - Merge: the primary manager re-imports every class STF
//     (mtbdd.Import) in class order — a slot array keyed by class index
//     makes the accumulation order independent of scheduling, so reports
//     are byte-identical to the sequential path for every worker count.
//     Hash-consing makes equal functions from different workers collapse
//     to the same *Node, restoring the pointer-equality invariant the
//     §5.3 link-local equivalence grouping relies on.
//   - Checking: CheckOverloadAll fans the directed links out over a pool
//     of shard checkers, each with a private Manager into which it imports
//     just the STFs present on the link at hand. Results are accumulated
//     in the network's link order, so the Report is identical (modulo
//     per-check Elapsed timings) to a sequential run.
//
// workers <= 1 bypasses all of this and is the exact legacy code path.
package core

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// testExecHook, when non-nil, runs before each sharded flow execution.
// It is a test seam: injecting a panic here exercises the worker
// containment path without corrupting any real state.
var testExecHook func(topo.Flow)

// shardGCThreshold is the live-node count that triggers a shard-local GC
// in a link-check worker. Nothing is retained across links, so the roots
// are empty and the collection is cheap.
const shardGCThreshold = 1 << 20

// chunkDeque is one worker's work queue of class-index chunks. The owner
// pops from the front (chunks arrive cost-descending, so the front is the
// most expensive remaining work); thieves take from the back, moving the
// cheapest chunks — the ones the owner would reach last. A mutex suffices:
// contention is per-chunk, not per-flow, and chunks are sized to amortize
// it (buildChunks).
type chunkDeque struct {
	mu     sync.Mutex
	chunks [][]int
}

func (d *chunkDeque) push(c []int) {
	d.mu.Lock()
	d.chunks = append(d.chunks, c)
	d.mu.Unlock()
}

func (d *chunkDeque) popFront() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.chunks) == 0 {
		return nil
	}
	c := d.chunks[0]
	d.chunks = d.chunks[1:]
	return c
}

func (d *chunkDeque) popBack() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.chunks)
	if n == 0 {
		return nil
	}
	c := d.chunks[n-1]
	d.chunks = d.chunks[:n-1]
	return c
}

func (d *chunkDeque) depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.chunks)
}

// NewParallelVerifier executes the flows like NewVerifier but schedules
// the symbolic execution across up to the given number of workers, and
// returns a Verifier whose CheckOverloadAll fans links out over the same
// number of workers. workers <= 1 falls back to the sequential
// NewVerifier. At most one goroutine per work chunk is spawned — never
// an idle worker (SchedStats reports the actual count).
//
// The parallel and sequential paths produce identical Reports: execution
// is deterministic per class, results land in a slot array indexed by
// class (so scheduling order cannot reorder them), the merge restores
// canonical node identity in the primary manager in class order, and
// checking accumulates results in link order.
func NewParallelVerifier(e *Engine, flows []topo.Flow, workers int) *Verifier {
	if workers <= 1 {
		return NewVerifier(e, flows)
	}
	v := &Verifier{e: e, flows: flows, workers: workers,
		kreduceT: e.opts.Obs.Timer("check/kreduce")}
	v.classes, v.classOf = classifyFlows(e, flows)
	classes := v.classes
	v.measured = make([]float64, len(classes))
	v.execCount = len(classes)
	v.sched = SchedStats{Classes: len(classes), DedupHits: dedupHits(classes)}
	obsR := e.opts.Obs
	obsR.Counter("sched.class_dedup_hits").Add(int64(v.sched.DedupHits))
	if len(classes) == 0 {
		return v
	}

	// Cost-ordered chunks, dealt round-robin onto per-worker deques.
	// Chunks are cost-descending, so round-robin approximates a
	// longest-processing-time-first assignment; stealing corrects the
	// rest at run time.
	classCosts(e, classes)
	spawn := workers
	if spawn > len(classes) {
		spawn = len(classes)
	}
	chunks := buildChunks(classes, spawn)
	if spawn > len(chunks) {
		spawn = len(chunks)
	}
	v.sched.Workers = spawn
	v.sched.Chunks = len(chunks)
	deques := make([]*chunkDeque, spawn)
	for w := range deques {
		deques[w] = &chunkDeque{}
	}
	for i, c := range chunks {
		deques[i%spawn].push(c)
	}
	depthHW := 0
	for _, d := range deques {
		if n := d.depth(); n > depthHW {
			depthHW = n
		}
	}

	// Divide the managed-GC budget among the workers so peak memory stays
	// in the same ballpark as a sequential run.
	wopts := e.opts
	if wopts.GCThreshold <= 0 {
		wopts.GCThreshold = defaultGCThreshold
	}
	wopts.GCThreshold /= spawn
	if wopts.GCThreshold < 1<<18 {
		wopts.GCThreshold = 1 << 18
	}

	// The shared read-only guard snapshot: built once here, replayed
	// linearly by every worker (copy-on-write — workers materialize nodes
	// only in their own arenas).
	base := e.rs.NewImportBase()

	stfs := make([]*FlowSTF, len(classes))
	workerErrs := make([]error, spawn)
	var steals atomic.Int64
	var stop atomic.Bool
	// next returns the worker's next chunk: its own deque front first,
	// then the back of the other deques (scanned from its right neighbor
	// so thieves spread instead of piling onto worker 0).
	next := func(w int) []int {
		if c := deques[w].popFront(); c != nil {
			return c
		}
		for off := 1; off < spawn; off++ {
			if c := deques[(w+off)%spawn].popBack(); c != nil {
				steals.Add(1)
				return c
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Private manager with the same variable order; guards are
			// replayed from the shared snapshot, never shared as nodes.
			// The primary manager is only read (node fields are
			// immutable), which is safe while the main goroutine blocks
			// in Wait. Governance must be armed before the import —
			// NewEngine would install it only after the import has
			// already run ungoverned.
			var werr error
			execC := obsR.Counter(workerCounter(w, "flows_executed"))
			busyT := obsR.Timer(workerCounter(w, "busy"))
			cerr := contained(func() {
				mW := mtbdd.New()
				defer RecordManager(obsR, "exec-shard."+strconv.Itoa(w), mW)
				installGovernance(mW, wopts)
				fvW := routesim.NewFailVars(mW, e.net, e.fv.Mode, e.fv.K)
				fvW.NoFuse = e.fv.NoFuse
				engW := NewEngine(base.ImportInto(fvW), wopts)
				var local []*FlowSTF
				for !stop.Load() {
					chunk := next(w)
					if chunk == nil {
						return
					}
					start := time.Now()
					for _, ci := range chunk {
						if testExecHook != nil {
							testExecHook(classes[ci].rep)
						}
						before := mW.Stats().Created
						s, err := engW.executeGoverned(classes[ci].rep, local)
						if err != nil {
							werr = err
							busyT.Add(time.Since(start))
							return
						}
						v.measured[ci] = float64(mW.Stats().Created - before)
						local = append(local, s)
						stfs[ci] = s
						execC.Inc()
					}
					busyT.Add(time.Since(start))
				}
			})
			if cerr != nil {
				werr = cerr
			}
			if werr != nil {
				workerErrs[w] = werr
				// A budget breach under the degrade policy is local: this
				// worker bows out and its queued chunks remain stealable.
				// Anything else is fatal to the run — stop the pool.
				if !(errors.Is(werr, govern.ErrNodeBudget) && e.opts.OnBudget == BudgetDegrade) {
					stop.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	v.sched.Steals = int(steals.Load())
	obsR.Counter("sched.steals").Add(steals.Load())
	obsR.Counter("sched.chunks").Add(int64(len(chunks)))
	obsR.Counter("sched.workers_spawned").Add(int64(spawn))
	obsR.Counter("sched.queue_depth_hw").Add(int64(depthHW))

	// Worker triage. Per-flow budget breaches were already handled inside
	// executeGoverned (GC + retry + concrete fallback); an error reaching
	// here is a cancellation, a contained panic, a breach under the fail
	// policy — or a breach during worker setup (snapshot replay), where a
	// same-budget retry would deterministically breach again. Under the
	// degrade policy any class left unexecuted (its worker died; nobody
	// stole it in time) goes to the bounded concrete fallback on the
	// primary engine.
	var budgetErr error
	for _, werr := range workerErrs {
		if werr == nil {
			continue
		}
		if errors.Is(werr, govern.ErrNodeBudget) && e.opts.OnBudget == BudgetDegrade {
			budgetErr = werr
		} else if v.err == nil {
			v.err = werr
		}
	}
	if v.err != nil {
		v.execCount = 0
		return v
	}
	if budgetErr != nil {
		for ci := range stfs {
			if stfs[ci] != nil {
				continue
			}
			s, ferr := e.concreteFallbackSTF(classes[ci].rep, budgetErr)
			if ferr != nil {
				v.err = ferr
				v.execCount = 0
				return v
			}
			stfs[ci] = s
		}
	}

	// Merge: rebuild every class STF in the primary manager, in class
	// order, garbage-collecting as the unique table fills. The merge runs
	// under the same budget ladder as execution: GC + retry on a breach,
	// then (degrade policy) a concrete rebuild of the offending flow.
	mergeSpan := e.opts.Obs.Span("execute/merge")
	defer mergeSpan.End()
	v.stfs = make([]*FlowSTF, 0, len(classes))
	for i, s := range stfs {
		var out *FlowSTF
		attempt := func() error {
			return mtbdd.Guard(func() {
				out = importSTF(e.m, s)
				e.maybeGC(v.stfs, stfRoots(nil, []*FlowSTF{out}))
			})
		}
		merr := attempt()
		if merr != nil && errors.Is(merr, govern.ErrNodeBudget) {
			e.m.GC(e.roots(stfRoots(nil, v.stfs)))
			merr = attempt()
		}
		if merr != nil && errors.Is(merr, govern.ErrNodeBudget) && e.opts.OnBudget == BudgetDegrade {
			out, merr = e.concreteFallbackSTF(classes[i].rep, merr)
		}
		if merr != nil {
			v.err = merr
			break
		}
		v.stfs = append(v.stfs, out)
	}
	v.execCount = len(v.stfs)
	return v
}

// importSTF rebuilds a shard-owned FlowSTF in the manager m.
func importSTF(m *mtbdd.Manager, s *FlowSTF) *FlowSTF {
	out := &FlowSTF{
		Flow:       s.Flow,
		Links:      make(map[topo.DirLinkID]*mtbdd.Node, len(s.Links)),
		Delivered:  m.Import(s.Delivered),
		Dropped:    m.Import(s.Dropped),
		InFlight:   m.Import(s.InFlight),
		Iterations: s.Iterations,
		Degraded:   s.Degraded,
	}
	for l, w := range s.Links {
		out.Links[l] = m.Import(w)
	}
	return out
}

// linkRes is one directed link's check outcome in the parallel pool.
// done distinguishes a completed check from one that was skipped (budget
// degrade) or never ran (cancellation stopped the pool first) — both of
// the latter leave the link unchecked in the report.
type linkRes struct {
	stat  LinkCheckStat
	viols []Violation
	done  bool
}

// checkOverloadAllParallel is the concurrent counterpart of
// CheckOverloadAll: directed links are distributed over a worker pool via
// an atomic cursor, every worker checks links in a private shard manager,
// and per-link results are written into a slot array so the final
// accumulation order — and therefore the Report — matches the sequential
// path exactly.
//
// The pool is governed: each worker polls the context between links, a
// budget breach on a shard retries once after a shard GC and then (under
// the degrade policy) leaves the link unchecked, and any worker panic is
// contained into an error. The first fatal error stops the pool; links
// without a completed verdict are recorded as Unchecked.
func (v *Verifier) checkOverloadAllParallel(factor float64, rep *Report) error {
	net := v.e.net
	type job struct {
		l     topo.DirLinkID
		limit float64
	}
	jobs := make([]job, 0, 2*net.NumLinks())
	for li := 0; li < net.NumLinks(); li++ {
		link := net.Link(topo.LinkID(li))
		limit := link.Capacity * factor
		for _, d := range []topo.Direction{topo.AtoB, topo.BtoA} {
			jobs = append(jobs, job{topo.MakeDirLinkID(link.ID, d), limit})
		}
	}
	results := make([]linkRes, len(jobs))
	workers := v.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		cursor   atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			linkC := v.e.opts.Obs.Counter(workerCounter(w, "links_checked"))
			var c *shardChecker
			if err := contained(func() { c = newShardChecker(v) }); err != nil {
				// A budget so tight the shard's FailVars cannot even be
				// built: under the degrade policy the shard bows out (its
				// links end up unchecked via other workers or not at all);
				// otherwise it is fatal.
				if !errors.Is(err, govern.ErrNodeBudget) || v.e.opts.OnBudget != BudgetDegrade {
					fail(err)
				}
				return
			}
			defer RecordManager(v.e.opts.Obs, "check-shard."+strconv.Itoa(w), c.m)
			for !stop.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := govern.Check(v.e.opts.Ctx); err != nil {
					fail(err)
					return
				}
				done, err := c.checkLinkGoverned(jobs[i].l, jobs[i].limit, &results[i])
				if err != nil {
					fail(err)
					return
				}
				results[i].done = done
				linkC.Inc()
				c.maybeGC()
			}
		}(w)
	}
	wg.Wait()
	for i := range results {
		if results[i].done {
			rep.LinkStats = append(rep.LinkStats, results[i].stat)
			rep.Violations = append(rep.Violations, results[i].viols...)
		} else {
			rep.markUnchecked(jobs[i].l)
		}
	}
	return firstErr
}

// shardChecker checks directed links in a private manager. It imports the
// STFs present on each link on demand (memoized by the manager's import
// cache) and mirrors the sequential checkOverloadPruned / LinkLoad logic
// operation for operation, so its verdicts and values are identical.
type shardChecker struct {
	v  *Verifier
	m  *mtbdd.Manager
	fv *routesim.FailVars
}

func newShardChecker(v *Verifier) *shardChecker {
	m := mtbdd.New()
	installGovernance(m, v.e.opts)
	fv := routesim.NewFailVars(m, v.e.net, v.e.fv.Mode, v.e.fv.K)
	return &shardChecker{v: v, m: m, fv: fv}
}

// checkLinkGoverned runs one link check through the budget ladder on the
// shard's private manager: a breach triggers a full shard GC (nothing is
// retained between links) and one retry; a retry that still breaches is
// reported as skipped under the degrade policy, fatal otherwise.
func (c *shardChecker) checkLinkGoverned(l topo.DirLinkID, limit float64, res *linkRes) (bool, error) {
	attempt := func() error {
		return mtbdd.Guard(func() {
			res.stat, res.viols = c.checkLink(l, limit)
		})
	}
	err := attempt()
	if err != nil && errors.Is(err, govern.ErrNodeBudget) {
		c.m.GC(nil)
		err = attempt()
	}
	if err == nil {
		return true, nil
	}
	if errors.Is(err, govern.ErrNodeBudget) && c.v.e.opts.OnBudget == BudgetDegrade {
		return false, nil
	}
	return false, err
}

// maybeGC collects the shard manager between links. Nothing survives a
// link check, so the root set is empty (the import memo is dropped with
// the other caches and rebuilt on demand).
func (c *shardChecker) maybeGC() {
	if c.m.Stats().Live > shardGCThreshold {
		c.m.GC(nil)
	}
}

// checkLink verifies one directed link against an upper limit through the
// shared scan core, without touching the primary manager: classes are
// keyed by the primary canonical pointer and imported on demand, so the
// grouping — and every verdict and value — is identical to sequential.
func (c *shardChecker) checkLink(l topo.DirLinkID, limit float64) (LinkCheckStat, []Violation) {
	return c.scan().checkLink(l, limit)
}
