package core

import (
	"github.com/yu-verify/yu/internal/concrete"
	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// concreteFallbackSTF is rung 3 of the degradation ladder: when a
// flow's symbolic execution cannot fit in the node budget even after a
// GC, its STF is rebuilt by bounded concrete enumeration — one concrete
// simulation per failure scenario within the budget k, stitched into an
// MTBDD with an ITE chain. The result is pointwise identical to the
// symbolic STF on every assignment with at most k failures (the only
// region Theorem 5.1 reads), so downstream aggregation and checking are
// unchanged; it merely costs O(C(n,≤k)) simulations for this one flow.
//
// The scenarios are applied in order of increasing failure-set size, so
// for any assignment with failure set Z (|Z| ≤ k) the last ITE whose
// guard covers it is the one for Z itself — later, larger scenarios
// override smaller ones, which is what makes the chain exact.
//
// The node budget is lifted while the chain is built (and restored
// after): the fallback must make progress on the very manager that just
// breached. The chain is built from KReduce'd pieces, so its size is
// bounded by the k-failure-equivalence quotient, not by the breach.
// The interrupt hook stays armed, so the fallback remains cancellable.
//
// cause is the budget error that triggered the fallback; it is returned
// when the fallback itself is impossible (no configs, no finite k).
func (e *Engine) concreteFallbackSTF(f topo.Flow, cause error) (*FlowSTF, error) {
	if e.opts.Configs == nil {
		return nil, cause
	}
	k := e.fv.K
	if k < 0 {
		k = e.opts.CheckK // the no-KReduce ablation still has a real k
	}
	if k < 0 {
		return nil, cause
	}

	m := e.m
	prevBudget := m.NodeBudget()
	m.SetNodeBudget(0)
	defer m.SetNodeBudget(prevBudget)

	var out *FlowSTF
	err := mtbdd.Guard(func() {
		out = e.buildFallbackSTF(f, k)
	})
	if err != nil {
		return nil, err
	}
	e.opts.Obs.Counter("govern.concrete_fallbacks").Inc()
	e.opts.Obs.Log().Once("degrade:"+f.String(),
		"yu: flow %s degraded to bounded concrete enumeration (node budget)", f)
	return out, err
}

// fbElem is one failable element for the fallback enumeration, mirroring
// the concrete baseline's (unexported) elem.
type fbElem struct {
	link   topo.LinkID
	router topo.RouterID
	isLink bool
}

func (el fbElem) apply(sc *concrete.Scenario, down bool) {
	if el.isLink {
		sc.LinkDown[el.link] = down
	} else {
		sc.RouterDown[el.router] = down
	}
}

// failableElems lists the elements that may fail under the engine's
// failure mode, in the same deterministic order the concrete baseline
// enumerates them.
func (e *Engine) failableElems() []fbElem {
	var elems []fbElem
	mode := e.fv.Mode
	if mode == topo.FailLinks || mode == topo.FailBoth {
		for i := range e.net.Links {
			if !e.net.Links[i].NoFail {
				elems = append(elems, fbElem{link: topo.LinkID(i), isLink: true})
			}
		}
	}
	if mode == topo.FailRouters || mode == topo.FailBoth {
		for i := range e.net.Routers {
			if !e.net.Routers[i].NoFail {
				elems = append(elems, fbElem{router: topo.RouterID(i)})
			}
		}
	}
	return elems
}

func (e *Engine) buildFallbackSTF(f topo.Flow, k int) *FlowSTF {
	m, fv := e.m, e.fv
	sim := concrete.NewSim(e.net, e.opts.Configs)
	elems := e.failableElems()
	if k > len(elems) {
		k = len(elems)
	}

	out := &FlowSTF{
		Flow:      f,
		Links:     make(map[topo.DirLinkID]*mtbdd.Node),
		Delivered: m.Zero(),
		Dropped:   m.Zero(),
		InFlight:  m.Zero(),
		Degraded:  true,
	}
	vol := f.Gbps
	if vol <= 0 {
		return out
	}

	sc := concrete.NewScenario(e.net)
	apply := func(guard *mtbdd.Node) {
		rt := sim.ComputeRoutes(sc)
		tr := sim.SimulateFlow(rt, f)
		// Every link seen so far must be updated under this guard —
		// absent from this scenario's trace means fraction 0 there,
		// and larger scenarios must override smaller ones everywhere.
		for l, w := range out.Links {
			out.Links[l] = m.ITE(guard, m.Const(tr.Load[l]/vol), w)
		}
		for l, load := range tr.Load {
			if _, seen := out.Links[l]; !seen {
				// First appearance: all earlier scenarios carried 0
				// here, so the zero base encodes them exactly.
				out.Links[l] = m.ITE(guard, m.Const(load/vol), m.Zero())
			}
		}
		out.Delivered = m.ITE(guard, m.Const(tr.Delivered/vol), out.Delivered)
		out.Dropped = m.ITE(guard, m.Const(tr.Dropped/vol), out.Dropped)
	}

	// Size 0 first (the all-alive base case), then every failure set of
	// each size up to k, in increasing size order.
	apply(m.One())
	chosen := make([]fbElem, 0, k)
	var visit func(start, need int)
	visit = func(start, need int) {
		if err := govern.Check(e.opts.Ctx); err != nil {
			mtbdd.Abort(err)
		}
		if need == 0 {
			guard := m.One()
			for _, el := range chosen {
				v := -1
				if el.isLink {
					v = fv.LinkVar(el.link)
				} else {
					v = fv.RouterVar(el.router)
				}
				guard = m.And(guard, m.NVar(v))
			}
			apply(guard)
			return
		}
		for i := start; i <= len(elems)-need; i++ {
			el := elems[i]
			el.apply(sc, true)
			chosen = append(chosen, el)
			visit(i+1, need-1)
			chosen = chosen[:len(chosen)-1]
			el.apply(sc, false)
		}
	}
	for size := 1; size <= k; size++ {
		visit(0, size)
	}

	// Reduce and prune: links with an identically-zero reduced STF were
	// never crossed within the budget and would only pollute the
	// link-local class counts.
	for l, w := range out.Links {
		r := fv.Reduce(w)
		if r == m.Zero() {
			delete(out.Links, l)
		} else {
			out.Links[l] = r
		}
	}
	out.Delivered = fv.Reduce(out.Delivered)
	out.Dropped = fv.Reduce(out.Dropped)
	return out
}
