package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// installGovernance arms a manager with the engine's context poll and
// node budget. Every manager the pipeline creates — the primary, each
// execution shard's, each link-check shard's — goes through here, so a
// cancel or breach unwinds no matter which manager is doing the work.
func installGovernance(m *mtbdd.Manager, opts Options) {
	if ctx := opts.Ctx; ctx != nil {
		m.SetInterrupt(func() error { return govern.Check(ctx) })
	}
	if opts.NodeBudget > 0 {
		m.SetNodeBudget(opts.NodeBudget)
	}
}

// contained runs fn with full panic containment: an MTBDD operation
// abort becomes its typed error, and any other panic becomes an error
// carrying the panic value and stack instead of crashing the process.
// This is the worker-goroutine boundary — a panic in one shard must
// surface as that shard's error, not take down the whole verifier.
func contained(fn func()) (err error) {
	defer func() {
		if r := recover(); r == nil {
			return
		} else if e := mtbdd.AbortError(r); e != nil {
			err = e
		} else {
			err = fmt.Errorf("core: worker panic: %v\n%s", r, debug.Stack())
		}
	}()
	fn()
	return nil
}

// executeGoverned runs one flow's symbolic execution through the
// degradation ladder:
//
//  1. plain ExecuteFlow (with the engine's managed GC);
//  2. on a budget breach, an engine-wide GC keeping only the engine
//     caches and the already-completed STFs, then one retry;
//  3. if the retry still breaches and the policy is BudgetDegrade, the
//     flow is re-verified by bounded concrete enumeration
//     (concreteFallbackSTF) and marked Degraded.
//
// Cancellation and non-budget errors are returned as-is at any rung.
func (e *Engine) executeGoverned(f topo.Flow, done []*FlowSTF) (*FlowSTF, error) {
	if err := govern.Check(e.opts.Ctx); err != nil {
		return nil, err
	}
	s, err := e.tryExecute(f, done)
	if err == nil || !errors.Is(err, govern.ErrNodeBudget) {
		return s, err
	}
	e.opts.Obs.Counter("govern.budget_gc_retries").Inc()
	e.m.GC(e.roots(stfRoots(nil, done)))
	s, err = e.tryExecute(f, done)
	if err == nil || !errors.Is(err, govern.ErrNodeBudget) {
		return s, err
	}
	if e.opts.OnBudget != BudgetDegrade {
		return nil, err
	}
	return e.concreteFallbackSTF(f, err)
}

// tryExecute is one governed attempt at symbolic execution: the flow is
// executed and the manager collected if over threshold, with operation
// aborts converted to errors.
func (e *Engine) tryExecute(f topo.Flow, done []*FlowSTF) (s *FlowSTF, err error) {
	err = mtbdd.Guard(func() {
		s = e.ExecuteFlow(f)
		e.maybeGC(done, stfRoots(nil, []*FlowSTF{s}))
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}
