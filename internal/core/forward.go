package core

import (
	"net/netip"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/routesim"
	"github.com/yu-verify/yu/internal/topo"
)

// maxSRChain bounds recursive SR policy re-entry while building cached
// steps (a policy whose path pops back into IP lookup on the same router).
const maxSRChain = 4

// rule is one forwarding rule of the merged longest-prefix-match RIB view
// used by forwardIp: static routes and BGP candidates, ordered by
// preference for the s/c encodings of §4.4.
type rule struct {
	guard   *mtbdd.Node
	deliver bool
	discard bool
	direct  bool
	out     topo.DirLinkID
	// indirect resolution target (BGP next hop loopback or static via).
	viaRouter topo.RouterID
	// viaAddr is the literal next-hop address, used for SR policy
	// matching (policies match on the route's next hop, Figure 1).
	viaAddr netip.Addr
}

// forwardIp returns the cached unit-forwarding step of router r for the
// given destination class and DSCP — the paper's Function forwardIp plus
// the route selection, ECMP, and route iteration encodings.
func (e *Engine) forwardIp(r topo.RouterID, class int, dscp uint8) *step {
	key := ipKey{r, class, dscp}
	if s, ok := e.ipCache[key]; ok {
		return s
	}
	s := e.buildIPStep(r, class, dscp, 0)
	e.ipCache[key] = s
	return s
}

// ruleGroups builds the preference-ordered rule groups for router r and a
// destination class: longest prefix first; within a prefix, statics (admin
// distance 1) before BGP; within BGP, decision-process rank groups whose
// members tie (ECMP).
func (e *Engine) ruleGroups(r topo.RouterID, class int) [][]rule {
	var groups [][]rule
	for _, pfx := range e.classifier.matchedPrefixes(class) {
		// Statics for this exact prefix.
		var statics []rule
		for _, st := range e.rs.Statics[r] {
			if st.Prefix != pfx {
				continue
			}
			ru := rule{guard: st.Guard, discard: st.Discard}
			if !st.Discard {
				if st.Indirect {
					ru.viaRouter = st.ViaRouter
					ru.viaAddr = e.net.Router(st.ViaRouter).Loopback
				} else {
					ru.direct = true
					ru.out = st.Out
				}
			}
			statics = append(statics, ru)
		}
		if len(statics) > 0 {
			groups = append(groups, statics)
		}
		// BGP candidates, already preference-sorted by routesim.
		cands := e.rs.BGP.RIBs[r][pfx]
		i := 0
		for i < len(cands) {
			j := i
			var grp []rule
			for j < len(cands) && candSameRank(cands[i], cands[j]) {
				c := cands[j]
				j++
				if c.AdvertiseOnly {
					continue
				}
				ru := rule{guard: c.Guard, deliver: c.Deliver, discard: c.Discard}
				if !c.Deliver && !c.Discard {
					if c.Direct {
						ru.direct = true
						ru.out = c.OutEdge
					} else {
						ru.viaRouter = c.NextHopRouter
						ru.viaAddr = c.NextHop
					}
				}
				grp = append(grp, ru)
			}
			if len(grp) > 0 {
				groups = append(groups, grp)
			}
			i = j
		}
	}
	return groups
}

func candSameRank(a, b *routesim.BGPCand) bool { return a.SameRank(b) }

// buildIPStep computes the unit step for IP forwarding. depth guards SR
// policy chains.
func (e *Engine) buildIPStep(r topo.RouterID, class int, dscp uint8, depth int) *step {
	m, fv := e.m, e.fv
	st := &step{out: make(map[outKey]stepOut), delivered: m.Zero(), dropped: m.Zero()}
	groups := e.ruleGroups(r, class)
	if len(groups) == 0 {
		// No route: everything arriving here is dropped.
		st.dropped = m.One()
		return st
	}
	// Route selection encoding s_r (present and all strictly more
	// preferred absent) and ECMP encoding c_r = s_r / Σ s.
	type selRule struct {
		rule
		sel *mtbdd.Node
	}
	var rules []selRule
	var sels []*mtbdd.Node
	better := m.Zero()
	for _, grp := range groups {
		groupOr := m.Zero()
		for _, ru := range grp {
			sel := fv.ReduceAnd(ru.guard, m.Not(better))
			rules = append(rules, selRule{ru, sel})
			sels = append(sels, sel)
			groupOr = m.Or(groupOr, ru.guard)
		}
		better = fv.ReduceOr(better, groupOr)
	}
	// Selection guards are {0,1}, so their sum is exact and a balanced
	// fused tree is safe (see FailVars.ReduceSum).
	total := fv.ReduceSum(sels)
	// Traffic with no selected rule at all is dropped (no route).
	st.dropped = m.Add(st.dropped, fv.Reduce(m.Not(fv.ReduceMin(total, m.One()))))

	for _, ru := range rules {
		if ru.sel == m.Zero() {
			continue
		}
		c := fv.ReduceDiv(ru.sel, total)
		switch {
		case ru.deliver:
			st.delivered = fv.ReduceAdd(st.delivered, c)
		case ru.discard:
			st.dropped = fv.ReduceAdd(st.dropped, c)
		case ru.direct:
			e.addOut(st, ru.out, nil, c)
		default:
			e.resolveNhIP(st, r, class, dscp, ru.rule, c, depth)
		}
	}
	return st
}

// resolveNhIP implements Function resolveNhIp: SR policy match first, then
// IGP route iteration (paper §4.4).
func (e *Engine) resolveNhIP(st *step, r topo.RouterID, class int, dscp uint8, ru rule, c *mtbdd.Node, depth int) {
	m, fv := e.m, e.fv
	if pol := e.matchSRPolicy(r, ru.viaAddr, dscp); pol != nil && depth < maxSRChain {
		// Weighted SR paths: c_p = g_p * w_p / Σ g_p' * w_p'. Integer
		// weights times {0,1} guards sum exactly, and the fused
		// multiply-accumulate never materializes the scaled products.
		denom := m.Zero()
		for _, p := range pol.Paths {
			denom = fv.ReduceMulAdd(denom, m.Const(float64(p.Weight)), p.Guard)
		}
		served := m.Zero()
		for _, p := range pol.Paths {
			cp := fv.ReduceDiv(m.Scale(float64(p.Weight), p.Guard), denom)
			if cp == m.Zero() {
				continue
			}
			served = fv.ReduceAdd(served, cp)
			e.emitSR(st, r, class, dscp, stack(p.Segments), fv.ReduceMul(c, cp), depth+1)
		}
		// Scenarios where no SR path is valid: the policy holds the
		// traffic and it is dropped (strict steering).
		rem := fv.ReduceMul(c, m.Sub(m.One(), served))
		st.dropped = fv.ReduceAdd(st.dropped, rem)
		return
	}
	// Plain IGP route iteration.
	vec := e.igpVec(r, ru.viaRouter)
	for l, frac := range vec.perLink {
		e.addOut(st, l, nil, fv.ReduceMul(c, frac))
	}
	st.dropped = fv.ReduceAdd(st.dropped, fv.ReduceMul(c, m.Sub(m.One(), vec.total)))
}

// emitSR routes traffic carrying label stack s out of router r: pop any
// leading self-segments, then steer toward the first segment over the IGP
// (Function forwardSr).
func (e *Engine) emitSR(st *step, r topo.RouterID, class int, dscp uint8, s stack, w *mtbdd.Node, depth int) {
	m, fv := e.m, e.fv
	for len(s) > 0 && s[0] == r {
		s = s[1:]
	}
	if len(s) == 0 {
		// Stack exhausted at this router: continue as IP traffic here.
		sub := e.buildIPStep(r, class, dscp, depth)
		st.delivered = fv.ReduceMulAdd(st.delivered, w, sub.delivered)
		st.dropped = fv.ReduceMulAdd(st.dropped, w, sub.dropped)
		for k, o := range sub.out {
			e.addOut(st, k.link, o.stack, fv.ReduceMul(w, o.frac))
		}
		return
	}
	vec := e.igpVec(r, s[0])
	for l, frac := range vec.perLink {
		e.addOut(st, l, s, fv.ReduceMul(w, frac))
	}
	st.dropped = fv.ReduceAdd(st.dropped, fv.ReduceMul(w, m.Sub(m.One(), vec.total)))
}

// forwardSr is the cached step for traffic arriving at r with a non-empty
// label stack.
func (e *Engine) forwardSr(r topo.RouterID, class int, dscp uint8, s stack) *step {
	key := srKey{r, class, dscp, s.key()}
	if st, ok := e.srCache[key]; ok {
		return st
	}
	m := e.m
	st := &step{out: make(map[outKey]stepOut), delivered: m.Zero(), dropped: m.Zero()}
	e.emitSR(st, r, class, dscp, s, m.One(), 0)
	e.srCache[key] = st
	return st
}

func (e *Engine) addOut(st *step, l topo.DirLinkID, s stack, frac *mtbdd.Node) {
	if frac == e.m.Zero() {
		return
	}
	k := outKey{l, s.key()}
	if prev, ok := st.out[k]; ok {
		st.out[k] = stepOut{frac: e.fv.ReduceAdd(prev.frac, frac), stack: s}
	} else {
		st.out[k] = stepOut{frac: frac, stack: s}
	}
}

// matchSRPolicy returns the first SR policy of r matching the next-hop
// address and DSCP, if any.
func (e *Engine) matchSRPolicy(r topo.RouterID, nip netip.Addr, dscp uint8) *routesim.GuardedSRPolicy {
	for i := range e.rs.SR[r] {
		if e.rs.SR[r][i].Matches(nip, dscp) {
			return &e.rs.SR[r][i]
		}
	}
	return nil
}

// igpVec returns the cached V^IGP_dest vector at router r: per outgoing
// link, the ratio of traffic resolved onto it, built from the guarded
// IS-IS RIB with the s/c encodings (paper Figure 7).
func (e *Engine) igpVec(r, dest topo.RouterID) *igpVec {
	key := igpKey{r, dest}
	if v, ok := e.igpCache[key]; ok {
		return v
	}
	m, fv := e.m, e.fv
	v := &igpVec{perLink: make(map[topo.DirLinkID]*mtbdd.Node), total: m.Zero()}
	if r == dest {
		// Traffic destined to the local router resolves nowhere; treat
		// the total as fully served so nothing is dropped spuriously.
		v.total = m.One()
		e.igpCache[key] = v
		return v
	}
	routes := e.rs.IGP.Routes(r, dest)
	if len(routes) > 0 {
		sels := make([]*mtbdd.Node, len(routes))
		better := m.Zero()
		i := 0
		for i < len(routes) {
			j := i
			groupOr := m.Zero()
			for j < len(routes) && routes[j].Cost == routes[i].Cost {
				sels[j] = fv.ReduceAnd(routes[j].Guard, m.Not(better))
				groupOr = m.Or(groupOr, routes[j].Guard)
				j++
			}
			better = fv.ReduceOr(better, groupOr)
			i = j
		}
		// Exact {0,1} selection guards: balanced fused sum is safe.
		total := fv.ReduceSum(sels)
		for idx, rt := range routes {
			if sels[idx] == m.Zero() {
				continue
			}
			c := fv.ReduceDiv(sels[idx], total)
			if c == m.Zero() {
				continue
			}
			if prev, ok := v.perLink[rt.Out]; ok {
				// Fractional ratios: keep the in-order pairwise fold so the
				// float expression matches the legacy pipeline bit-for-bit.
				v.perLink[rt.Out] = fv.ReduceAdd(prev, c)
			} else {
				v.perLink[rt.Out] = c
			}
		}
		v.total = fv.ReduceMin(total, m.One())
	}
	e.igpCache[key] = v
	return v
}
