// Check-engine assembly for compositional verification (DESIGN.md §17).
//
// The compositional pipeline (internal/compose) executes equivalence
// classes inside per-domain managers and hands the finished STFs — links
// already translated to global DirLinkIDs, nodes still owned by the
// domain managers — to NewAssembledVerifier, which rebuilds them in the
// check engine's manager in class order. Hash-consing restores canonical
// node identity, so the assembled Verifier's aggregation, scans, and
// reports are indistinguishable from a monolithic run's: an imported STF
// and a natively executed STF of the same function are the same *Node.
package core

import (
	"errors"

	"github.com/yu-verify/yu/internal/govern"
	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// NewAssembledVerifier builds a Verifier from pre-executed class STFs.
//
// flows is the full input flow list; it is classified on e exactly as
// NewVerifier would (e must therefore carry the same ClassifyPrefixes the
// coordinator used for GlobalClasses). pre is the per-class slot array in
// that class order: pre[i] non-nil is class i's finished STF with global
// link IDs (its nodes may live in any manager — they are imported), and
// pre[i] == nil marks a class beyond the domains' precision limit, which
// is executed natively on e through the standard governed ladder (e's
// route-sim result must then cover the whole network).
//
// The import runs under the same budget ladder as the parallel merge:
// attempt, GC + retry on a breach, then (degrade policy) the bounded
// concrete fallback.
func NewAssembledVerifier(e *Engine, flows []topo.Flow, workers int, pre []*FlowSTF) *Verifier {
	if workers < 1 {
		workers = 1
	}
	v := &Verifier{e: e, flows: flows, workers: workers,
		kreduceT: e.opts.Obs.Timer("check/kreduce")}
	v.classes, v.classOf = classifyFlows(e, flows)
	v.measured = make([]float64, len(v.classes))
	v.sched = SchedStats{Workers: 1, Classes: len(v.classes), DedupHits: dedupHits(v.classes)}
	e.opts.Obs.Counter("sched.class_dedup_hits").Add(int64(v.sched.DedupHits))
	if len(pre) != len(v.classes) {
		// The coordinator classified with a different prefix set than the
		// engine — a programming error, not an input condition.
		panic("core: assembled STF slot array does not match the class count")
	}
	mergeSpan := e.opts.Obs.Span("execute/assemble")
	defer mergeSpan.End()
	flowC := e.opts.Obs.Counter("exec.flows_executed")
	for i, s := range pre {
		if s == nil {
			// Precision fallback: whole-network execution on the check
			// engine, identical to the monolithic pipeline's path for this
			// class.
			before := e.m.Stats().Created
			out, err := e.executeGoverned(v.classes[i].rep, v.stfs)
			if err != nil {
				v.err = err
				break
			}
			v.measured[i] = float64(e.m.Stats().Created - before)
			v.stfs = append(v.stfs, out)
			flowC.Inc()
			continue
		}
		var out *FlowSTF
		attempt := func() error {
			return mtbdd.Guard(func() {
				out = importSTF(e.m, s)
				e.maybeGC(v.stfs, stfRoots(nil, []*FlowSTF{out}))
			})
		}
		merr := attempt()
		if merr != nil && errors.Is(merr, govern.ErrNodeBudget) {
			e.m.GC(e.roots(stfRoots(nil, v.stfs)))
			merr = attempt()
		}
		if merr != nil && errors.Is(merr, govern.ErrNodeBudget) && e.opts.OnBudget == BudgetDegrade {
			out, merr = e.concreteFallbackSTF(v.classes[i].rep, merr)
		}
		if merr != nil {
			v.err = merr
			break
		}
		v.stfs = append(v.stfs, out)
	}
	v.execCount = len(v.stfs)
	return v
}

// ExecuteGoverned exposes the governed execution ladder (budget GC +
// retry, then the policy-selected response) to the compositional
// coordinator, which executes class representatives on per-domain
// engines outside any Verifier. done lists this engine's already-built
// STFs — the GC roots that must survive a managed collection.
func (e *Engine) ExecuteGoverned(f topo.Flow, done []*FlowSTF) (*FlowSTF, error) {
	return e.executeGoverned(f, done)
}

// TranslateSTF re-keys a domain-local FlowSTF's link map to global
// directed-link IDs via toGlobal (indexed by subnet LinkID), leaving the
// nodes untouched in their owning manager, and stamps the global view of
// the executed flow (the domain ran it under a subnet-local ingress ID).
// The result is what NewAssembledVerifier expects in a pre slot.
func TranslateSTF(s *FlowSTF, toGlobal []topo.LinkID, flow topo.Flow) *FlowSTF {
	out := &FlowSTF{
		Flow:       flow,
		Links:      make(map[topo.DirLinkID]*mtbdd.Node, len(s.Links)),
		Delivered:  s.Delivered,
		Dropped:    s.Dropped,
		InFlight:   s.InFlight,
		Iterations: s.Iterations,
		Degraded:   s.Degraded,
	}
	for l, w := range s.Links {
		gl := toGlobal[l.Link()]
		out.Links[topo.MakeDirLinkID(gl, l.Dir())] = w
	}
	return out
}
