package core

import (
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/topo"
)

func schedFixture(t *testing.T) (*Engine, []topo.Flow) {
	t.Helper()
	spec, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 8, SRPolicyFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 200, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 2, Seed: 105,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buildEngine(t, spec, topo.FailLinks, 1, Options{}), flows
}

// TestClassifyFlows pins the class structure: classOf maps every input
// flow to its class, member counts and summed volumes add up, and first-
// seen order matches the historical mergeFlows order.
func TestClassifyFlows(t *testing.T) {
	e, flows := schedFixture(t)
	classes, classOf := classifyFlows(e, flows)
	if len(classOf) != len(flows) {
		t.Fatalf("classOf has %d entries for %d flows", len(classOf), len(flows))
	}
	if len(classes) >= len(flows) {
		t.Fatalf("no dedup on the random fixture: %d classes from %d flows", len(classes), len(flows))
	}
	members := make([]int, len(classes))
	volume := make([]float64, len(classes))
	for fi, ci := range classOf {
		if ci < 0 || ci >= len(classes) {
			t.Fatalf("flow %d mapped to out-of-range class %d", fi, ci)
		}
		members[ci]++
		volume[ci] += flows[fi].Gbps
	}
	hits := 0
	for ci := range classes {
		if classes[ci].members != members[ci] {
			t.Fatalf("class %d: members %d, classOf says %d", ci, classes[ci].members, members[ci])
		}
		if diff := classes[ci].rep.Gbps - volume[ci]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("class %d: rep volume %.9g, member sum %.9g", ci, classes[ci].rep.Gbps, volume[ci])
		}
		hits += classes[ci].members - 1
	}
	if got := dedupHits(classes); got != hits {
		t.Fatalf("dedupHits = %d, want %d", got, hits)
	}
	merged := mergeFlows(e, flows)
	for i := range classes {
		if merged[i] != classes[i].rep {
			t.Fatalf("class %d rep diverges from mergeFlows order", i)
		}
	}

	// Disabled global equivalence: identity classification.
	e2, _ := schedFixture(t)
	e2.opts.DisableGlobalEquiv = true
	id, idOf := classifyFlows(e2, flows)
	if len(id) != len(flows) || dedupHits(id) != 0 {
		t.Fatalf("disabled equiv still merged: %d classes, %d hits", len(id), dedupHits(id))
	}
	for i := range idOf {
		if idOf[i] != i {
			t.Fatalf("disabled equiv classOf[%d] = %d", i, idOf[i])
		}
	}
}

// TestBuildChunksCoverAndOrder checks the chunking invariants: every
// class appears in exactly one chunk, and chunk heads are cost-ordered
// (descending), so expensive work is dequeued first.
func TestBuildChunksCoverAndOrder(t *testing.T) {
	e, flows := schedFixture(t)
	classes, _ := classifyFlows(e, flows)
	classCosts(e, classes)
	for i := range classes {
		if classes[i].cost <= 0 {
			t.Fatalf("class %d has non-positive cost %g", i, classes[i].cost)
		}
	}
	chunks := buildChunks(classes, 4)
	if len(chunks) == 0 {
		t.Fatal("no chunks")
	}
	seen := make(map[int]bool)
	prev := classes[chunks[0][0]].cost
	for _, ch := range chunks {
		if len(ch) == 0 {
			t.Fatal("empty chunk")
		}
		if c := classes[ch[0]].cost; c > prev {
			t.Fatalf("chunk head cost %g after %g: not descending", c, prev)
		} else {
			prev = c
		}
		for _, ci := range ch {
			if seen[ci] {
				t.Fatalf("class %d in two chunks", ci)
			}
			seen[ci] = true
		}
	}
	if len(seen) != len(classes) {
		t.Fatalf("chunks cover %d of %d classes", len(seen), len(classes))
	}
}

// TestCostHintsOverrideHeuristic checks the warm-start path: a hint keyed
// by the stable class key wins over the topology heuristic.
func TestCostHintsOverrideHeuristic(t *testing.T) {
	e, flows := schedFixture(t)
	classes, _ := classifyFlows(e, flows)
	e.opts.CostHints = map[string]float64{classes[0].key: 123456}
	classCosts(e, classes)
	if classes[0].cost != 123456 {
		t.Fatalf("hinted class cost = %g, want 123456", classes[0].cost)
	}
}

// TestCostHintsRoundTrip saves a measured cost map, reloads it, and runs
// the parallel verifier warm-started: the report must stay identical and
// the hints must be non-trivial.
func TestCostHintsRoundTrip(t *testing.T) {
	e, flows := schedFixture(t)
	seq := NewVerifier(e, flows)
	hints := seq.CostHints()
	if len(hints) == 0 {
		t.Fatal("sequential run measured no costs")
	}
	path := filepath.Join(t.TempDir(), "hints.json")
	if err := SaveCostHints(path, hints); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCostHints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(hints) {
		t.Fatalf("loaded %d hints, saved %d", len(loaded), len(hints))
	}
	missing, err := LoadCostHints(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing hints file: %v, %d entries", err, len(missing))
	}

	seqRep := mustRun(t, func() (*Report, error) { return seq.Run(nil, nil, 1.0) })
	e2, _ := schedFixture(t)
	e2.opts.CostHints = loaded
	par := NewParallelVerifier(e2, flows, 4)
	parRep := mustRun(t, func() (*Report, error) { return par.Run(nil, nil, 1.0) })
	reportsEqual(t, "hints-warm-start", seqRep, parRep)
}

// TestCostHintsCorruptFile pins the degraded-input contract: a hints
// file that is not valid JSON (truncated write, disk corruption, manual
// editing) must not fail the run — LoadCostHints warns and returns an
// empty map, so the scheduler falls back to the topology heuristic.
// This is the contract the daemon's warm-state restore relies on.
func TestCostHintsCorruptFile(t *testing.T) {
	for name, garbage := range map[string]string{
		"not-json":  "these are not the hints you are looking for",
		"truncated": `{"class-a": 12`,
		"wrong-top": `[1, 2, 3]`,
	} {
		path := filepath.Join(t.TempDir(), "hints.json")
		if err := os.WriteFile(path, []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		hints, err := LoadCostHints(path)
		if err != nil {
			t.Fatalf("%s: corrupt hints file must not error, got %v", name, err)
		}
		if len(hints) != 0 {
			t.Fatalf("%s: corrupt hints file yielded %d entries, want 0", name, len(hints))
		}
	}
}

// TestSchedulerNoIdleWorkers pins satellite 1: the scheduler never spawns
// a goroutine with no chunk to run. With fewer classes than workers the
// spawn count collapses to the class count, and every spawned worker's
// flow counter is visible in stats.
func TestSchedulerNoIdleWorkers(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 12, Links: 24, Prefixes: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	all, err := flowgen.Random(spec, flowgen.RandomSpec{Count: 40, DistinctDstPerPrefix: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ flows, workers int }{{3, 8}, {1, 4}, {40, 64}} {
		flows := all[:tc.flows]
		eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
		v := NewParallelVerifier(eng, flows, tc.workers)
		if v.Err() != nil {
			t.Fatal(v.Err())
		}
		st := v.SchedStats()
		if st.Workers > st.Classes {
			t.Fatalf("flows=%d workers=%d: spawned %d workers for %d classes",
				tc.flows, tc.workers, st.Workers, st.Classes)
		}
		if st.Workers > st.Chunks {
			t.Fatalf("flows=%d workers=%d: spawned %d workers for %d chunks",
				tc.flows, tc.workers, st.Workers, st.Chunks)
		}
		if st.Workers <= 0 || st.Chunks <= 0 {
			t.Fatalf("flows=%d workers=%d: empty sched stats %+v", tc.flows, tc.workers, st)
		}
	}

	// Zero flows: no goroutines, no chunks, a well-formed empty verifier.
	engZ := buildEngine(t, spec, topo.FailLinks, 1, Options{})
	vz := NewParallelVerifier(engZ, nil, 8)
	if st := vz.SchedStats(); st.Workers != 0 || st.Chunks != 0 || st.Classes != 0 {
		t.Fatalf("zero flows spawned work: %+v", st)
	}
}

// TestSchedulerObsCounters checks satellite 2's counter surface: the
// sched.* counters land in the registry snapshot with consistent values.
func TestSchedulerObsCounters(t *testing.T) {
	reg := obs.New()
	spec, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 8, SRPolicyFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 200, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 2, Seed: 105,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := buildEngine(t, spec, topo.FailLinks, 1, Options{Obs: reg})
	v := NewParallelVerifier(eng, flows, 4)
	if v.Err() != nil {
		t.Fatal(v.Err())
	}
	st := v.SchedStats()
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"sched.workers_spawned":  int64(st.Workers),
		"sched.chunks":           int64(st.Chunks),
		"sched.steals":           int64(st.Steals),
		"sched.class_dedup_hits": int64(st.DedupHits),
	} {
		if got, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s missing from snapshot", name)
		} else if got != want {
			t.Errorf("counter %s = %d, SchedStats says %d", name, got, want)
		}
	}
	if _, ok := snap.Counters["sched.queue_depth_hw"]; !ok {
		t.Error("counter sched.queue_depth_hw missing from snapshot")
	}
	if st.DedupHits <= 0 {
		t.Error("random fixture produced no dedup hits")
	}
	// Per-worker busy timers: one per spawned worker, non-negative.
	busy := 0
	for name := range snap.TimersMS {
		if len(name) > 7 && name[:7] == "worker." && name[len(name)-5:] == ".busy" {
			busy++
		}
	}
	if busy != st.Workers {
		t.Errorf("%d worker busy timers, %d workers spawned", busy, st.Workers)
	}
}

// TestStealingDeterminism runs the stealing scheduler twice with
// different adversarial per-flow delays injected through testExecHook —
// perturbing which worker executes which chunk and when steals happen —
// and requires byte-identical reports. This is the §13 determinism
// invariant: scheduling must be invisible in the output.
func TestStealingDeterminism(t *testing.T) {
	spec, err := gen.WAN(gen.WANSpec{Routers: 30, Links: 60, Prefixes: 8, SRPolicyFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(spec, flowgen.RandomSpec{
		Count: 200, DSCP5Fraction: 0.3, DistinctDstPerPrefix: 2, Seed: 105,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(salt uint32) *Report {
		t.Helper()
		testExecHook = func(f topo.Flow) {
			h := fnv.New32a()
			h.Write([]byte(f.String()))
			// Delay 0–300µs, flow- and salt-dependent: runs with different
			// salts interleave workers differently and steal differently.
			time.Sleep(time.Duration((h.Sum32()^salt)%4) * 100 * time.Microsecond)
		}
		defer func() { testExecHook = nil }()
		eng := buildEngine(t, spec, topo.FailLinks, 1, Options{})
		v := NewParallelVerifier(eng, flows, 4)
		return mustRun(t, func() (*Report, error) { return v.Run(nil, nil, 0.5) })
	}
	a := run(0x00000000)
	b := run(0x9e3779b9)
	reportsEqual(t, "stealing-determinism", a, b)
}
