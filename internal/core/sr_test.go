package core

import (
	"fmt"
	"testing"

	"github.com/yu-verify/yu/internal/topo"
)

// TestStackKeyCollisionFree checks stack.key() is injective: the paper's
// matrix M is addressed by (link, stack), so two distinct label stacks
// must never share a cache key — e.g. {1,23} vs {12,3}, which a naive
// digit concatenation would conflate.
func TestStackKeyCollisionFree(t *testing.T) {
	if (stack{}).key() != "" {
		t.Errorf("empty stack key = %q, want \"\"", (stack{}).key())
	}
	pairs := [][2]stack{
		{{1, 23}, {12, 3}},
		{{1, 2, 3}, {12, 3}},
		{{1, 2, 3}, {1, 23}},
		{{0}, {}},
		{{21, 1}, {2, 11}},
	}
	for _, p := range pairs {
		if p[0].key() == p[1].key() {
			t.Errorf("stacks %v and %v collide on key %q", p[0], p[1], p[0].key())
		}
	}
	// Exhaustive sweep: every stack of length <= 3 over 26 routers keys
	// uniquely.
	seen := make(map[string]string)
	var walk func(s stack, depth int)
	walk = func(s stack, depth int) {
		k := s.key()
		repr := fmt.Sprintf("%v", s)
		if prev, ok := seen[k]; ok && prev != repr {
			t.Fatalf("stacks %s and %s collide on key %q", prev, repr, k)
		}
		seen[k] = repr
		if depth == 0 {
			return
		}
		for r := topo.RouterID(0); r < 26; r++ {
			walk(append(s, r), depth-1)
		}
	}
	walk(stack{}, 3)
}

// srTriangle is a three-router iBGP triangle with the destination prefix
// at C: A-C is the cost-1 shortest path from A, the detour via B costs 2.
// The template slot takes extra config lines (SR policies under test).
const srTriangle = `
router A as 1 loopback 10.0.0.1
router B as 1 loopback 10.0.0.2
router C as 1 loopback 10.0.0.3
link A B cost 1 capacity 100
link B C cost 1 capacity 100
link A C cost 1 capacity 100
auto-bgp-mesh
config C
  network 100.0.0.0/24
%s
flow f ingress A src 11.0.0.1 dst 100.0.0.5 gbps 8
`

func triangleFixture(t *testing.T, extra string) *fixture {
	t.Helper()
	return newFixture(t, fmt.Sprintf(srTriangle, extra), topo.FailLinks, 1, Options{})
}

func (fx *fixture) deliveredNoFail(t *testing.T) float64 {
	t.Helper()
	total := 0.0
	for _, s := range fx.ver.FlowSTFs() {
		total += fx.eng.Manager().EvalAllAlive(s.Delivered)
	}
	return total
}

// TestSRStackExhaustionContinuesAsIP steers the flow through B with a
// single-segment path: the stack exhausts at B (it pops its own segment)
// and the traffic must continue as plain IP traffic from B — taking the
// detour A->B->C instead of the IGP-shortest A->C.
func TestSRStackExhaustionContinuesAsIP(t *testing.T) {
	fx := triangleFixture(t, "config A\n  sr-policy 10.0.0.3/32\n    path 10.0.0.2 weight 1\n")
	for _, c := range []struct {
		a, b string
		want float64
	}{{"A", "B", 8}, {"B", "C", 8}, {"A", "C", 0}} {
		if got := fx.load(t, c.a, c.b); !approx(got, c.want) {
			t.Errorf("load %s->%s = %.6g, want %.6g", c.a, c.b, got, c.want)
		}
	}
	if got := fx.deliveredNoFail(t); !approx(got, 1) {
		t.Errorf("delivered fraction = %.6g, want 1", got)
	}
	// Control: without the policy the flow takes the direct link.
	ctl := triangleFixture(t, "")
	if got := ctl.load(t, "A", "C"); !approx(got, 8) {
		t.Errorf("control load A->C = %.6g, want 8", got)
	}
}

// TestSRLeadingSelfSegmentPop checks emitSR pops leading self-segments:
// a path that names the steering router first must behave exactly like
// the same path without it.
func TestSRLeadingSelfSegmentPop(t *testing.T) {
	withSelf := triangleFixture(t,
		"config A\n  sr-policy 10.0.0.3/32\n    path 10.0.0.1 10.0.0.2 10.0.0.3 weight 1\n")
	without := triangleFixture(t,
		"config A\n  sr-policy 10.0.0.3/32\n    path 10.0.0.2 10.0.0.3 weight 1\n")
	for _, c := range [][2]string{{"A", "B"}, {"B", "A"}, {"B", "C"}, {"A", "C"}, {"C", "A"}} {
		a, b := withSelf.load(t, c[0], c[1]), without.load(t, c[0], c[1])
		if !approx(a, b) {
			t.Errorf("load %s->%s: with self-segment %.6g, without %.6g", c[0], c[1], a, b)
		}
	}
	if got := withSelf.load(t, "A", "B"); !approx(got, 8) {
		t.Errorf("load A->B = %.6g, want 8 (steered via B)", got)
	}
	if got := withSelf.deliveredNoFail(t); !approx(got, 1) {
		t.Errorf("delivered fraction = %.6g, want 1", got)
	}
}

// TestSRSelfPathChainGuard feeds the pathological policy whose only path
// is the steering router itself: every pop lands back in IP lookup on
// the same router and re-matches the policy. The maxSRChain guard must
// cut the recursion (no hang, no stack overflow) and the traffic must
// then resolve natively over the IGP — fully delivered, nothing stuck.
func TestSRSelfPathChainGuard(t *testing.T) {
	fx := triangleFixture(t, "config A\n  sr-policy 10.0.0.3/32\n    path 10.0.0.1 weight 1\n")
	if got := fx.load(t, "A", "C"); !approx(got, 8) {
		t.Errorf("load A->C = %.6g, want 8 (native IGP after chain guard)", got)
	}
	if got := fx.deliveredNoFail(t); !approx(got, 1) {
		t.Errorf("delivered fraction = %.6g, want 1", got)
	}
	m := fx.eng.Manager()
	for _, s := range fx.ver.FlowSTFs() {
		if s.InFlight != m.Zero() {
			t.Errorf("flow %s left in-flight traffic behind the chain guard", s.Flow)
		}
	}
}

// TestSRWeightedSplitWithGuards checks the weighted-ECMP renormalization
// over SR paths: two paths weighted 3:1 split the flow 6:2, and when the
// detour path's first hop fails, its share renormalizes onto the
// survivor instead of being dropped.
func TestSRWeightedSplitWithGuards(t *testing.T) {
	fx := triangleFixture(t,
		"config A\n  sr-policy 10.0.0.3/32\n    path 10.0.0.3 weight 3\n    path 10.0.0.2 10.0.0.3 weight 1\n")
	if got := fx.load(t, "A", "C"); !approx(got, 6) {
		t.Errorf("no-failure load A->C = %.6g, want 6 (weight 3 of 4)", got)
	}
	if got := fx.load(t, "A", "B"); !approx(got, 2) {
		t.Errorf("no-failure load A->B = %.6g, want 2 (weight 1 of 4)", got)
	}
	// A-B down: the [B,C] path is invalid, all 8 renormalize onto [C].
	if got := fx.load(t, "A", "C", "A-B"); !approx(got, 8) {
		t.Errorf("load A->C under A-B failure = %.6g, want 8", got)
	}
}
