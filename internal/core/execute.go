package core

import (
	"sort"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/topo"
)

// FlowSTF is the result of symbolic traffic execution for one flow
// (Algorithm 1): the symbolic traffic fraction ω_f on every directed link
// (summed over label stacks), plus the fractions delivered and dropped.
// All MTBDDs map failure scenarios to fractions in [0,1] (within the
// k-failure budget) and are KReduce'd.
type FlowSTF struct {
	Flow topo.Flow
	// Links maps each directed link crossed by the flow to its STF.
	Links map[topo.DirLinkID]*mtbdd.Node
	// Delivered is the fraction of the flow's traffic reaching a router
	// that originates a prefix covering the destination.
	Delivered *mtbdd.Node
	// Dropped is the fraction discarded (no route, null route, broken SR
	// policy, or ingress router down).
	Dropped *mtbdd.Node
	// InFlight is nonzero only if the iteration cap was reached with
	// traffic still circulating (a forwarding loop in some scenario).
	InFlight *mtbdd.Node
	// Iterations is the number of hops executed.
	Iterations int
	// Degraded marks an STF rebuilt by the bounded concrete fallback
	// (rung 3 of the degradation ladder) rather than symbolic execution.
	Degraded bool
}

// inKey identifies a wavefront cell: traffic arriving at a router with a
// given label stack.
type inKey struct {
	router   topo.RouterID
	stackKey string
}

type inVal struct {
	stack stack
	omega *mtbdd.Node
}

// sortedFront returns the wavefront keys in (router, stackKey) order.
// Float MTBDD addition is not associative, so accumulating cells in map
// iteration order would make results vary run to run; a fixed order keeps
// every STF bit-for-bit reproducible — and identical across the sequential
// and sharded execution paths.
func sortedFront(front map[inKey]inVal) []inKey {
	keys := make([]inKey, 0, len(front))
	for k := range front {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].router != keys[j].router {
			return keys[i].router < keys[j].router
		}
		return keys[i].stackKey < keys[j].stackKey
	})
	return keys
}

// sortedOut returns a step's output keys in (link, stackKey) order, for
// the same reproducibility reason as sortedFront.
func sortedOut(out map[outKey]stepOut) []outKey {
	keys := make([]outKey, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].link != keys[j].link {
			return keys[i].link < keys[j].link
		}
		return keys[i].stackKey < keys[j].stackKey
	})
	return keys
}

// ExecuteFlow symbolically executes the forwarding of one flow under all
// failure scenarios (Algorithm 1). Iterations propagate a traffic
// wavefront hop by hop; per-link fractions accumulate, so the result is
// the total fraction of the flow's traffic crossing each link.
func (e *Engine) ExecuteFlow(f topo.Flow) *FlowSTF {
	m, fv := e.m, e.fv
	res := &FlowSTF{
		Flow:      f,
		Links:     make(map[topo.DirLinkID]*mtbdd.Node),
		Delivered: m.Zero(),
		Dropped:   m.Zero(),
		InFlight:  m.Zero(),
	}
	class := e.classifier.classOf(f.Dst)

	// The pseudo incoming link l_R of Algorithm 1: 100% of the flow at
	// the ingress router, gated on the ingress being alive. Traffic that
	// cannot even enter a dead ingress is counted as dropped.
	ingressUp := fv.RouterUp(f.Ingress)
	front := map[inKey]inVal{
		{f.Ingress, ""}: {nil, ingressUp},
	}
	res.Dropped = fv.Reduce(m.Not(ingressUp))

	iter := 0
	for len(front) > 0 && iter < e.maxIter {
		iter++
		next := make(map[inKey]inVal)
		for _, k := range sortedFront(front) {
			in := front[k]
			var st *step
			if len(in.stack) == 0 {
				st = e.forwardIp(k.router, class, f.DSCP)
			} else {
				st = e.forwardSr(k.router, class, f.DSCP, in.stack)
			}
			if st.delivered != m.Zero() {
				res.Delivered = fv.ReduceMulAdd(res.Delivered, in.omega, st.delivered)
			}
			if st.dropped != m.Zero() {
				res.Dropped = fv.ReduceMulAdd(res.Dropped, in.omega, st.dropped)
			}
			for _, ok2 := range sortedOut(st.out) {
				o := st.out[ok2]
				t := fv.ReduceMul(in.omega, o.frac)
				if t == m.Zero() {
					continue
				}
				link := ok2.link
				if prev, ok := res.Links[link]; ok {
					res.Links[link] = fv.ReduceAdd(prev, t)
				} else {
					res.Links[link] = t
				}
				to := e.net.Edge(link).To
				nk := inKey{to, ok2.stackKey}
				if prev, ok := next[nk]; ok {
					next[nk] = inVal{o.stack, fv.ReduceAdd(prev.omega, t)}
				} else {
					next[nk] = inVal{o.stack, t}
				}
			}
		}
		front = next
	}
	res.Iterations = iter
	for _, k := range sortedFront(front) {
		res.InFlight = fv.ReduceAdd(res.InFlight, front[k].omega)
	}
	return res
}
