package core

import (
	"strconv"
	"time"

	"github.com/yu-verify/yu/internal/mtbdd"
	"github.com/yu-verify/yu/internal/obs"
	"github.com/yu-verify/yu/internal/routesim"
)

// This file is the bridge between the MTBDD layer and the obs registry:
// obs is a leaf package (it must not import mtbdd), so core converts
// mtbdd.Stats into the plain obs.ManagerStats record.
//
// Instrumentation placement follows the overhead budget of DESIGN.md
// §11: no time.Now() ever runs inside ExecuteFlow's wavefront loop. The
// KREDUCE timer covers only the per-link aggregation loops (LinkLoad,
// DeliveredLoad, the pruned checks, and their shard mirrors), where one
// clock read per equivalence class is noise; KREDUCE effort during
// symbolic execution is reported through the manager's cumulative
// counters instead.

// ManagerObsStats converts one manager's stats snapshot into the obs
// record under the given name ("primary", "exec-shard.0", ...).
func ManagerObsStats(name string, m *mtbdd.Manager) obs.ManagerStats {
	st := m.Stats()
	return obs.ManagerStats{
		Name:         name,
		Created:      int(st.Created),
		Live:         st.Live,
		PeakLive:     st.PeakUnique,
		GCRuns:       st.GCRuns,
		KReduceCalls: st.KReduceCalls,
		FusionCuts:   st.FusionCuts,
		MaxProbe:     st.MaxProbe,
		Caches: map[string]obs.CacheCounters{
			"apply":   {Hits: st.Apply.Hits, Misses: st.Apply.Misses},
			"neg":     {Hits: st.Neg.Hits, Misses: st.Neg.Misses},
			"kreduce": {Hits: st.KReduce.Hits, Misses: st.KReduce.Misses},
			"range":   {Hits: st.Range.Hits, Misses: st.Range.Misses},
			"import":  {Hits: st.Import.Hits, Misses: st.Import.Misses},
			"fused":   {Hits: st.Fused.Hits, Misses: st.Fused.Misses},
		},
	}
}

// RecordManager snapshots a manager's stats into the registry. A nil
// registry records nothing.
func RecordManager(reg *obs.Registry, name string, m *mtbdd.Manager) {
	if reg == nil {
		return
	}
	reg.RecordManager(ManagerObsStats(name, m))
}

// workerCounter names a per-worker counter: "worker.3.flows_executed".
func workerCounter(w int, name string) string {
	return "worker." + strconv.Itoa(w) + "." + name
}

// mulAddTimed is the load-aggregation step Reduce(acc + vol*w), computed
// through the fused multiply-accumulate kernel, with an optional timer.
// The timer keeps its historical "check/kreduce" identity: it measures
// the reduction work of aggregation, which the fused kernel now performs
// inline. The nil check keeps the uninstrumented path free of clock reads.
func mulAddTimed(t *obs.Timer, fv *routesim.FailVars, acc *mtbdd.Node, vol float64, w *mtbdd.Node) *mtbdd.Node {
	if t == nil {
		return fv.ReduceMulAdd(acc, fv.M.Const(vol), w)
	}
	start := time.Now()
	r := fv.ReduceMulAdd(acc, fv.M.Const(vol), w)
	t.Add(time.Since(start))
	return r
}
