package yu

import (
	"sort"
	"testing"

	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
)

// TestXCheckWANEngines cross-validates YU against the enumerating
// baseline on a WAN-style network with SR policies and iBGP: both engines
// must flag exactly the same set of overloadable directed links, and YU
// must be deterministic across runs.
func TestXCheckWANEngines(t *testing.T) {
	wan, err := gen.WAN(gen.WANSpec{Routers: 60, Links: 120, Prefixes: 30, SRPolicyFraction: 0.1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(wan, flowgen.RandomSpec{Count: 800, DSCP5Fraction: 0.3, MeanGbps: 14, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	n := FromSpec(wan)
	linksOf := func(rep *Report) []string {
		set := map[string]bool{}
		for _, v := range rep.Violations {
			set[n.Topology().DirLinkName(v.Link)] = true
		}
		var out []string
		for l := range set {
			out = append(out, l)
		}
		sort.Strings(out)
		return out
	}
	yuRep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	yuRep2, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	a, b := linksOf(yuRep), linksOf(yuRep2)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	enumRep, err := n.Verify(VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows, Engine: EngineEnumerate, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	c := linksOf(enumRep)
	if len(a) != len(c) {
		t.Fatalf("YU flags %d links %v\nenum flags %d links %v", len(a), a, len(c), c)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("flagged links differ: %v vs %v", a, c)
		}
	}
	if len(a) == 0 {
		t.Fatal("instance too easy: no violations to compare")
	}
	t.Logf("both engines flag %d links", len(a))
}
