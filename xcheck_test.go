package yu_test

import (
	"testing"

	"github.com/yu-verify/yu"
	"github.com/yu-verify/yu/internal/difftest"
	"github.com/yu-verify/yu/internal/flowgen"
	"github.com/yu-verify/yu/internal/gen"
)

// TestXCheckWANEngines cross-validates YU against the enumerating
// baseline on a WAN-style network with SR policies and iBGP: both engines
// must flag exactly the same set of overloadable directed links, and YU
// must be deterministic across runs. The per-case version of this check
// runs as difftest's violation-sets oracle over many random networks;
// this test keeps one large fixed instance in the suite.
func TestXCheckWANEngines(t *testing.T) {
	wan, err := gen.WAN(gen.WANSpec{Routers: 60, Links: 120, Prefixes: 30, SRPolicyFraction: 0.1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flowgen.Random(wan, flowgen.RandomSpec{Count: 800, DSCP5Fraction: 0.3, MeanGbps: 14, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	n := yu.FromSpec(wan)
	keysOf := func(rep *yu.Report) []string {
		return difftest.ViolationKeys(n.Topology(), rep.Violations)
	}
	yuRep, err := n.Verify(yu.VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	yuRep2, err := n.Verify(yu.VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	a, b := keysOf(yuRep), keysOf(yuRep2)
	if difftest.FormatReport(n.Topology(), yuRep) != difftest.FormatReport(n.Topology(), yuRep2) {
		t.Fatalf("nondeterministic reports: %v vs %v", a, b)
	}
	enumRep, err := n.Verify(yu.VerifyOptions{K: 1, OverloadFactor: 1.0, Flows: flows, Engine: yu.EngineEnumerate, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	c := keysOf(enumRep)
	if len(a) != len(c) {
		t.Fatalf("YU flags %d properties %v\nenum flags %d properties %v", len(a), a, len(c), c)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("flagged properties differ: %v vs %v", a, c)
		}
	}
	if len(a) == 0 {
		t.Fatal("instance too easy: no violations to compare")
	}
	t.Logf("both engines flag %d properties", len(a))
}
