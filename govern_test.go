// Acceptance tests for the resource-governance surface of the public
// API: typed cancellation and budget errors, partial reports, and the
// symbolic→concrete degradation ladder.
package yu

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"
)

// TestVerifyPreCanceledContext: a context canceled before Verify starts
// must return ErrCanceled with a partial report, not a panic or a hang.
func TestVerifyPreCanceledContext(t *testing.T) {
	n := loadMotivating(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := n.Verify(VerifyOptions{OverloadFactor: 0.95, Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if rep == nil || !rep.Incomplete {
		t.Fatalf("want partial report with Incomplete set, got %+v", rep)
	}
	if rep.Holds {
		t.Fatal("incomplete report claims Holds")
	}
	if len(rep.Unchecked) == 0 {
		t.Fatal("partial report does not name the unchecked links")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("%d violations from a run that checked nothing", len(rep.Violations))
	}
}

// TestVerifyDeadline: an already-expired deadline surfaces as
// ErrDeadline (distinct from plain cancellation).
func TestVerifyDeadline(t *testing.T) {
	n := loadMotivating(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep, err := n.Verify(VerifyOptions{OverloadFactor: 0.95, Ctx: ctx})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("deadline expiry must not match ErrCanceled")
	}
	if rep == nil || !rep.Incomplete {
		t.Fatalf("want partial report, got %+v", rep)
	}
}

// TestVerifyNodeBudgetFail: a 1-node budget under the default fail
// policy returns ErrNodeBudget with a partial report.
func TestVerifyNodeBudgetFail(t *testing.T) {
	n := loadMotivating(t)
	rep, err := n.Verify(VerifyOptions{OverloadFactor: 0.95, MaxNodes: 1})
	if !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if rep == nil || !rep.Incomplete || rep.Holds {
		t.Fatalf("want partial non-Holds report, got %+v", rep)
	}
}

// TestVerifyNodeBudgetDegrade: the degrade policy must deliver the
// enumerating baseline's verdict without error, whatever the budget.
func TestVerifyNodeBudgetDegrade(t *testing.T) {
	n := loadMotivating(t)
	base, err := n.Verify(VerifyOptions{OverloadFactor: 0.95, Engine: EngineEnumerate})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 64, 4000} {
		rep, err := n.Verify(VerifyOptions{
			OverloadFactor: 0.95, MaxNodes: budget, OnBudget: BudgetDegrade,
		})
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if rep.Incomplete {
			// The motivating example is small enough that the ladder must
			// always terminate in a full verdict.
			t.Fatalf("budget=%d: degraded run left the report incomplete", budget)
		}
		if rep.Holds != base.Holds {
			t.Fatalf("budget=%d: Holds=%v, baseline says %v", budget, rep.Holds, base.Holds)
		}
		if got, want := violatedLinks(t, n, rep), violatedLinks(t, n, base); !equalStrings(got, want) {
			t.Fatalf("budget=%d: violated links %v, baseline %v", budget, got, want)
		}
	}
}

// violatedLinks renders a report's link-load violations to sorted,
// deduplicated link names.
func violatedLinks(t *testing.T, n *Network, rep *Report) []string {
	t.Helper()
	set := make(map[string]bool)
	for _, v := range rep.Violations {
		if v.Kind == "link-load" {
			set[n.Topology().DirLinkName(v.Link)] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
